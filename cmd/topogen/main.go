// Command topogen generates node placements — the paper's concentric-ring
// topologies or any other registered generator — and emits them as JSON
// (one document per topology), for inspection or for feeding external
// tools.
//
// Examples:
//
//	topogen -n 5 -count 3 -seed 42 | jq '.positions | length'
//	topogen -kind grid -n 6 -stats
//	topogen -scenario run.json -svg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/plot"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		n            = fs.Int("n", 5, "density N (inner nodes; 9N total)")
		kind         = fs.String("kind", "", "topology generator kind (default rings)")
		count        = fs.Int("count", 1, "number of topologies to generate")
		seed         = fs.Int64("seed", 1, "random seed")
		scenarioPath = fs.String("scenario", "", "take the topology section and seed from a scenario JSON file")
		stats        = fs.Bool("stats", false, "print degree statistics instead of JSON")
		svg          = fs.Bool("svg", false, "emit an SVG rendering instead of JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Sanity bounds on the flag path (-scenario goes through the full
	// scenario validation instead): a mistyped -n should fail with a
	// clear message, not try to materialize a billion-point slice.
	const maxDensity = 1 << 18 // ≈2.4M total nodes at the default 3 rings
	switch {
	case *n < 2:
		return fmt.Errorf("-n: density must be at least 2, got %d", *n)
	case *n > maxDensity:
		return fmt.Errorf("-n: density %d exceeds the sanity bound %d (≈%d total nodes); edit the bound if you really mean it", *n, maxDensity, 9*maxDensity)
	case *count < 1:
		return fmt.Errorf("-count: must be at least 1, got %d", *count)
	}
	sc := sim.Scenario{Topology: sim.TopologySpec{Kind: *kind, N: *n}}
	topoSeed := *seed
	if *scenarioPath != "" {
		loaded, err := sim.LoadScenario(*scenarioPath)
		if err != nil {
			return err
		}
		if err := loaded.Validate(); err != nil {
			return err
		}
		sc = loaded
		topoSeed = loaded.Seed
	}
	rng := rand.New(rand.NewSource(topoSeed))
	enc := json.NewEncoder(os.Stdout)
	for i := 0; i < *count; i++ {
		topo, err := sim.GenerateTopology(rng, sc)
		if err != nil {
			return err
		}
		if *svg {
			if err := plot.TopologySVG(os.Stdout, topo); err != nil {
				return err
			}
			continue
		}
		if *stats {
			deg := topo.Degrees()
			min, max, sum := deg[0], deg[0], 0
			for _, d := range deg {
				if d < min {
					min = d
				}
				if d > max {
					max = d
				}
				sum += d
			}
			fmt.Printf("topology %d: %d nodes, degree min/mean/max = %d/%.1f/%d\n",
				i, len(deg), min, float64(sum)/float64(len(deg)), max)
			continue
		}
		if err := enc.Encode(topo); err != nil {
			return err
		}
	}
	return nil
}
