// Command topogen generates the paper's concentric-ring topologies and
// emits them as JSON (one document per topology), for inspection or for
// feeding external tools.
//
// Example:
//
//	topogen -n 5 -count 3 -seed 42 | jq '.positions | length'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/plot"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		n     = fs.Int("n", 5, "density N (inner nodes; 9N total)")
		count = fs.Int("count", 1, "number of topologies to generate")
		seed  = fs.Int64("seed", 1, "random seed")
		stats = fs.Bool("stats", false, "print degree statistics instead of JSON")
		svg   = fs.Bool("svg", false, "emit an SVG rendering instead of JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	enc := json.NewEncoder(os.Stdout)
	for i := 0; i < *count; i++ {
		topo, err := topology.Generate(rng, topology.DefaultConfig(*n))
		if err != nil {
			return err
		}
		if *svg {
			if err := plot.TopologySVG(os.Stdout, topo); err != nil {
				return err
			}
			continue
		}
		if *stats {
			deg := topo.Degrees()
			min, max, sum := deg[0], deg[0], 0
			for _, d := range deg {
				if d < min {
					min = d
				}
				if d > max {
					max = d
				}
				sum += d
			}
			fmt.Printf("topology %d: %d nodes, degree min/mean/max = %d/%.1f/%d\n",
				i, len(deg), min, float64(sum)/float64(len(deg)), max)
			continue
		}
		if err := enc.Encode(topo); err != nil {
			return err
		}
	}
	return nil
}
