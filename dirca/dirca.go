// Package dirca (DIRectional Collision Avoidance) is the public API of
// this reproduction of "Collision Avoidance in Single-Channel Ad Hoc
// Networks Using Directional Antennas" (Wang & Garcia-Luna-Aceves,
// ICDCS 2003).
//
// It exposes two entry points:
//
//   - The analytical model (Section 2 of the paper): saturation
//     throughput of the ORTS-OCTS, DRTS-DCTS and DRTS-OCTS
//     collision-avoidance schemes on a Poisson plane of nodes, via
//     Throughput, MaxThroughput and Fig5Table.
//
//   - The discrete-event simulator (Section 4): a full IEEE 802.11 DCF
//     implementation with directional-transmission variants on the
//     paper's concentric-ring topologies, via Simulate, SimulateBatch and
//     SimulateGrid.
//
// A minimal session:
//
//	p, th, _ := dirca.MaxThroughput(dirca.DRTSDCTS, dirca.ModelParams{
//		N: 5, Beamwidth: math.Pi / 6, Lengths: dirca.PaperLengths(),
//	})
//	res, _ := dirca.Simulate(dirca.SimConfig{
//		Scheme: dirca.DRTSDCTS, BeamwidthDeg: 30, N: 5,
//		Seed: 1, Duration: 5 * dirca.Second,
//	})
package dirca

import (
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
)

// Scheme identifies a collision-avoidance scheme.
type Scheme = core.Scheme

// The three schemes analyzed in the paper.
const (
	// ORTSOCTS transmits every frame omni-directionally (standard
	// IEEE 802.11 collision avoidance).
	ORTSOCTS = core.ORTSOCTS
	// DRTSDCTS transmits every frame directionally.
	DRTSDCTS = core.DRTSDCTS
	// DRTSOCTS transmits RTS/DATA/ACK directionally and the CTS
	// omni-directionally.
	DRTSOCTS = core.DRTSOCTS
)

// Schemes returns all three schemes in the paper's order.
func Schemes() []Scheme { return core.Schemes() }

// Time is a simulation duration in nanoseconds.
type Time = des.Time

// Convenient duration units.
const (
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
)

// ModelParams parameterizes the analytical model: density N (average
// nodes per coverage disk), beamwidth in radians, and the packet lengths
// in slots.
type ModelParams = core.Params

// Lengths holds analytical packet lengths in slots.
type Lengths = core.Lengths

// PaperLengths returns the Section 3 configuration: 5-slot control
// packets and 100-slot data packets.
func PaperLengths() Lengths { return core.PaperLengths() }

// Throughput returns the normalized saturation throughput of scheme s at
// per-slot attempt probability p.
func Throughput(s Scheme, p float64, mp ModelParams) (float64, error) {
	return core.Throughput(s, p, mp)
}

// MaxThroughput returns the attempt probability maximizing throughput and
// the achieved maximum. Pass pMax = 0 for the default search bound.
func MaxThroughput(s Scheme, mp ModelParams, pMax float64) (bestP, bestTh float64, err error) {
	return core.MaxThroughput(s, mp, pMax)
}

// Fig5Row is one analytical beamwidth point (all three schemes).
type Fig5Row = experiments.Fig5Row

// Fig5Table computes the paper's Fig. 5 sweep (max throughput vs
// beamwidth, 15°..180°) for each density in ns.
func Fig5Table(ns []float64) ([]Fig5Row, error) { return experiments.Fig5(ns) }

// SimConfig configures one simulation run. See the field documentation
// in the experiments package; the zero PacketBytes defaults to the
// paper's 1460 bytes.
type SimConfig = experiments.SimConfig

// SimResult holds per-run metrics for the measured inner nodes.
type SimResult = experiments.SimResult

// BatchResult aggregates a configuration over many random topologies.
type BatchResult = experiments.BatchResult

// GridCell is one point of a Fig. 6/7-style parameter sweep.
type GridCell = experiments.GridCell

// Simulate runs one complete simulation (topology generation, PHY, MAC,
// saturated traffic) and reports inner-node metrics.
func Simulate(cfg SimConfig) (*SimResult, error) { return experiments.RunSim(cfg) }

// SimulateBatch runs cfg over the given number of independent random
// topologies in parallel and aggregates the per-topology means.
func SimulateBatch(cfg SimConfig, topologies int) (*BatchResult, error) {
	return experiments.RunBatch(cfg, topologies)
}

// SimulateGrid sweeps scheme × N × beamwidth, mirroring the paper's
// Figs. 6 and 7.
func SimulateGrid(base SimConfig, schemes []Scheme, ns []int, beamsDeg []float64, topologies int) ([]GridCell, error) {
	return experiments.RunGrid(base, schemes, ns, beamsDeg, topologies)
}

// PaperGrid returns the paper's simulation sweep: N ∈ {3,5,8},
// beamwidth ∈ {30°, 90°, 150°}.
func PaperGrid() (ns []int, beamsDeg []float64) { return experiments.PaperGrid() }
