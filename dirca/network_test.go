package dirca_test

import (
	"testing"

	"repro/dirca"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := dirca.NewNetwork(dirca.NetworkConfig{
		Scheme:    dirca.ORTSOCTS,
		Positions: []dirca.Position{{X: 0, Y: 0}},
	}); err == nil {
		t.Error("one-node network should be rejected")
	}
	two := []dirca.Position{{X: 0, Y: 0}, {X: 0.5, Y: 0}}
	if _, err := dirca.NewNetwork(dirca.NetworkConfig{
		Scheme: dirca.ORTSOCTS, Positions: two,
		Flows: []dirca.Flow{{Src: 0, Dst: 9}},
	}); err == nil {
		t.Error("flow to unknown node should be rejected")
	}
	if _, err := dirca.NewNetwork(dirca.NetworkConfig{
		Scheme: dirca.ORTSOCTS, Positions: two,
		Flows: []dirca.Flow{{Src: 0, Dst: 0}},
	}); err == nil {
		t.Error("self-flow should be rejected")
	}
}

func TestNetworkTwoNodeLink(t *testing.T) {
	nw, err := dirca.NewNetwork(dirca.NetworkConfig{
		Scheme:    dirca.ORTSOCTS,
		Positions: []dirca.Position{{X: 0, Y: 0}, {X: 0.5, Y: 0}},
		Flows:     []dirca.Flow{{Src: 0, Dst: 1}},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", nw.NumNodes())
	}
	if nw.ThroughputBps(0) != 0 {
		t.Error("throughput before Run should be 0")
	}
	nw.Run(2 * dirca.Second)
	if nw.Elapsed() != 2*dirca.Second {
		t.Errorf("Elapsed = %v", nw.Elapsed())
	}
	thr := nw.ThroughputBps(0)
	if thr < 1.4e6 || thr > 1.9e6 {
		t.Errorf("clean link goodput = %.3g b/s, want ≈ 1.62 Mb/s", thr)
	}
	st := nw.NodeStats(0)
	if st.Drops != 0 || st.CTSTimeouts != 0 {
		t.Errorf("clean link had failures: %+v", st)
	}
	// Node 1 is a pure responder: no RTS of its own.
	if nw.NodeStats(1).RTSSent != 0 {
		t.Error("flow-less node should not originate handshakes")
	}
}

func TestNetworkIncrementalRuns(t *testing.T) {
	nw, err := dirca.NewNetwork(dirca.NetworkConfig{
		Scheme:       dirca.DRTSDCTS,
		BeamwidthDeg: 45,
		Positions:    []dirca.Position{{X: 0, Y: 0}, {X: 0.5, Y: 0}},
		Flows:        []dirca.Flow{{Src: 0, Dst: 1}},
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(dirca.Second)
	first := nw.NodeStats(0).Successes
	nw.Run(dirca.Second)
	second := nw.NodeStats(0).Successes
	if !(second > first && first > 0) {
		t.Errorf("progress not monotone: %d then %d", first, second)
	}
}
