package dirca_test

import (
	"math"
	"testing"

	"repro/dirca"
)

func TestAllSchemesFacade(t *testing.T) {
	all := dirca.AllSchemes()
	if len(all) != 4 || all[3] != dirca.ORTSDCTS {
		t.Errorf("AllSchemes = %v", all)
	}
	s, err := dirca.ParseScheme("drts-dcts")
	if err != nil || s != dirca.DRTSDCTS {
		t.Errorf("ParseScheme = %v, %v", s, err)
	}
	if _, err := dirca.ParseScheme("nope"); err == nil {
		t.Error("bad name should fail")
	}
}

func TestAttemptProbabilityFacade(t *testing.T) {
	p, err := dirca.AttemptProbability(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 0.1 {
		t.Errorf("p = %v outside (0, p0)", p)
	}
	mp := dirca.ModelParams{N: 5, Beamwidth: math.Pi / 6, Lengths: dirca.PaperLengths()}
	th, err := dirca.ThroughputFromReadiness(dirca.DRTSDCTS, 0.1, mp)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || th >= 1 {
		t.Errorf("throughput = %v", th)
	}
}

func TestFig5SensitivityFacade(t *testing.T) {
	series, err := dirca.Fig5Sensitivity(3, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if len(series[100]) != 12 {
		t.Errorf("rows = %d, want 12", len(series[100]))
	}
}

func TestSweepFacades(t *testing.T) {
	base := dirca.SimConfig{
		Scheme: dirca.DRTSDCTS, BeamwidthDeg: 30, N: 3, Seed: 6,
		Duration: 200 * dirca.Millisecond,
	}
	loads, err := dirca.LoadSweep(base, []dirca.Scheme{dirca.ORTSOCTS}, []float64{100_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 1 {
		t.Errorf("load cells = %d", len(loads))
	}
	speeds, err := dirca.MobilitySweep(base, []dirca.Scheme{dirca.DRTSDCTS}, []float64{0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(speeds) != 1 {
		t.Errorf("mobility cells = %d", len(speeds))
	}
}

func TestModelVsSimFacade(t *testing.T) {
	base := dirca.SimConfig{Seed: 6, Duration: 200 * dirca.Millisecond}
	rows, err := dirca.ModelVsSim(base, []int{3}, []float64{30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per scheme)", len(rows))
	}
	rho := dirca.SpearmanRank(rows)
	if rho < -1 || rho > 1 {
		t.Errorf("spearman = %v", rho)
	}
}

func TestReuseAndCDFFacades(t *testing.T) {
	base := dirca.SimConfig{Seed: 9, Duration: 200 * dirca.Millisecond}
	cells, err := dirca.ReuseStudy(base, []dirca.Scheme{dirca.ORTSOCTS}, 3, []float64{30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Reuse.Mean <= 0 {
		t.Errorf("reuse cells = %+v", cells)
	}
	cdfBase := base
	cdfBase.N = 3
	rows, err := dirca.DelayCDF(cdfBase, []dirca.Scheme{dirca.ORTSOCTS}, []float64{50, 95})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("cdf rows = %d", len(rows))
	}
}
