package dirca

import (
	"repro/internal/core"
	"repro/internal/experiments"
)

// This file exposes the extension studies that go beyond the paper's
// artifacts: the fourth scheme, sensitivity/validation sweeps, and the
// load/mobility studies.

// ORTSDCTS is the fourth RTS/CTS combination (omni RTS, directional
// CTS/DATA/ACK), not analyzed in the paper but derivable with its
// machinery; both model and simulator support it. It is dominated by
// ORTSOCTS everywhere — see EXPERIMENTS.md.
const ORTSDCTS = core.ORTSDCTS

// AllSchemes lists the paper's three schemes plus ORTSDCTS.
func AllSchemes() []Scheme { return core.AllSchemes() }

// ParseScheme converts a scheme name ("DRTS-DCTS", "orts_octs", ...) to
// its Scheme value.
func ParseScheme(s string) (Scheme, error) { return core.ParseScheme(s) }

// AttemptProbability solves the fixed point p = p₀·(1−p)·e^{−pN} linking
// the paper's free parameter p (per-slot attempt probability) to the
// readiness probability p₀ a protocol actually controls.
func AttemptProbability(p0, n float64) (float64, error) {
	return core.AttemptProbability(p0, n)
}

// ThroughputFromReadiness evaluates scheme throughput at the attempt
// probability induced by readiness p₀.
func ThroughputFromReadiness(s Scheme, p0 float64, mp ModelParams) (float64, error) {
	return core.ThroughputFromReadiness(s, p0, mp)
}

// Fig5Sensitivity computes the analytical beamwidth sweep for alternative
// data-packet lengths, keyed by length.
func Fig5Sensitivity(n float64, dataLens []int) (map[int][]Fig5Row, error) {
	return experiments.Fig5Sensitivity(n, dataLens)
}

// LoadCell is one offered-load sweep point.
type LoadCell = experiments.LoadCell

// LoadSweep sweeps per-node offered CBR load for each scheme.
func LoadSweep(base SimConfig, schemes []Scheme, loadsBps []float64, topologies int) ([]LoadCell, error) {
	return experiments.LoadSweep(base, schemes, loadsBps, topologies)
}

// MobilityCell is one mobility sweep point.
type MobilityCell = experiments.MobilityCell

// MobilitySweep sweeps maximum node speed for each scheme under
// random-waypoint motion with bounded location staleness.
func MobilitySweep(base SimConfig, schemes []Scheme, speeds []float64, topologies int) ([]MobilityCell, error) {
	return experiments.MobilitySweep(base, schemes, speeds, topologies)
}

// ModelVsSimRow compares analytical and simulated normalized throughput
// at one grid point.
type ModelVsSimRow = experiments.ModelVsSimRow

// ModelVsSim evaluates the analytical model and the simulator on the
// same grid, using the simulator's real frame timings for the model.
func ModelVsSim(base SimConfig, ns []int, beamsDeg []float64, topologies int) ([]ModelVsSimRow, error) {
	return experiments.ModelVsSim(base, ns, beamsDeg, topologies)
}

// SpearmanRank measures ordering agreement between the analytical and
// simulated columns of a ModelVsSim table.
func SpearmanRank(rows []ModelVsSimRow) float64 {
	return experiments.SpearmanRank(rows)
}

// ReuseCell is one spatial-reuse study point.
type ReuseCell = experiments.ReuseCell

// ReuseStudy measures the concurrent-airtime factor across schemes and
// beamwidths — the paper's spatial-reuse mechanism quantified directly.
func ReuseStudy(base SimConfig, schemes []Scheme, n int, beamsDeg []float64, topologies int) ([]ReuseCell, error) {
	return experiments.ReuseStudy(base, schemes, n, beamsDeg, topologies)
}

// DelayCDFRow is one percentile row of a delay-distribution comparison.
type DelayCDFRow = experiments.DelayCDFRow

// DelayCDF tabulates per-packet delay percentiles per scheme.
func DelayCDF(base SimConfig, schemes []Scheme, percentiles []float64) ([]DelayCDFRow, error) {
	return experiments.DelayCDF(base, schemes, percentiles)
}
