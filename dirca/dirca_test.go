package dirca_test

import (
	"math"
	"testing"

	"repro/dirca"
)

func TestAnalyticalFacade(t *testing.T) {
	mp := dirca.ModelParams{N: 5, Beamwidth: math.Pi / 6, Lengths: dirca.PaperLengths()}
	th, err := dirca.Throughput(dirca.DRTSDCTS, 0.02, mp)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || th >= 1 {
		t.Errorf("throughput = %v outside (0,1)", th)
	}
	p, peak, err := dirca.MaxThroughput(dirca.DRTSDCTS, mp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if peak < th {
		t.Errorf("max %v below a sampled point %v", peak, th)
	}
	if p <= 0 || p >= 0.5 {
		t.Errorf("optimal p = %v out of expected range", p)
	}
}

func TestSchemesFacade(t *testing.T) {
	ss := dirca.Schemes()
	if len(ss) != 3 || ss[0] != dirca.ORTSOCTS || ss[1] != dirca.DRTSDCTS || ss[2] != dirca.DRTSOCTS {
		t.Errorf("Schemes = %v", ss)
	}
	if dirca.DRTSDCTS.String() != "DRTS-DCTS" {
		t.Errorf("scheme name = %q", dirca.DRTSDCTS.String())
	}
}

func TestFig5TableFacade(t *testing.T) {
	rows, err := dirca.Fig5Table([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// The paper's headline result via the public API: DRTS-DCTS wins at 15°.
	if !(rows[0].DRTSDCTS > rows[0].ORTSOCTS) {
		t.Errorf("DRTS-DCTS %v should beat ORTS-OCTS %v at 15°", rows[0].DRTSDCTS, rows[0].ORTSOCTS)
	}
}

func TestSimulateFacade(t *testing.T) {
	res, err := dirca.Simulate(dirca.SimConfig{
		Scheme: dirca.ORTSOCTS, N: 3, Seed: 2,
		Duration: 500 * dirca.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanThroughputBps() <= 0 {
		t.Error("facade simulation made no progress")
	}
	if len(res.ThroughputBps) != 3 {
		t.Errorf("inner nodes = %d, want 3", len(res.ThroughputBps))
	}
}

func TestSimulateBatchFacade(t *testing.T) {
	b, err := dirca.SimulateBatch(dirca.SimConfig{
		Scheme: dirca.DRTSOCTS, BeamwidthDeg: 90, N: 3, Seed: 4,
		Duration: 300 * dirca.Millisecond,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Runs != 2 {
		t.Errorf("runs = %d, want 2", b.Runs)
	}
}

func TestSimulateGridFacade(t *testing.T) {
	base := dirca.SimConfig{Seed: 5, Duration: 200 * dirca.Millisecond}
	cells, err := dirca.SimulateGrid(base, []dirca.Scheme{dirca.ORTSOCTS}, []int{3}, []float64{30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	ns, beams := dirca.PaperGrid()
	if len(ns) != 3 || len(beams) != 3 {
		t.Errorf("PaperGrid = %v, %v", ns, beams)
	}
}

func TestTimeUnits(t *testing.T) {
	if dirca.Second != 1000*dirca.Millisecond || dirca.Millisecond != 1000*dirca.Microsecond {
		t.Error("time unit ladder broken")
	}
	var d dirca.Time = 2 * dirca.Second
	if d.Seconds() != 2 {
		t.Errorf("Seconds = %v", d.Seconds())
	}
}
