package dirca_test

import (
	"fmt"
	"math"

	"repro/dirca"
)

// ExampleMaxThroughput reproduces one Fig. 5 point: the best saturation
// throughput of each scheme with a 30° beam and N = 5.
func ExampleMaxThroughput() {
	mp := dirca.ModelParams{
		N:         5,
		Beamwidth: 30 * math.Pi / 180,
		Lengths:   dirca.PaperLengths(),
	}
	for _, s := range dirca.Schemes() {
		_, th, err := dirca.MaxThroughput(s, mp, 0)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s %.3f\n", s, th)
	}
	// Output:
	// ORTS-OCTS 0.320
	// DRTS-DCTS 0.375
	// DRTS-OCTS 0.390
}

// ExampleThroughput evaluates the model at a fixed attempt probability.
func ExampleThroughput() {
	mp := dirca.ModelParams{
		N:         8,
		Beamwidth: math.Pi, // 180°
		Lengths:   dirca.PaperLengths(),
	}
	th, err := dirca.Throughput(dirca.DRTSDCTS, 0.01, mp)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.3f\n", th)
	// Output:
	// 0.042
}

// ExampleAttemptProbability solves the readiness→attempt fixed point the
// paper references: p = p₀·(1−p)·e^(−pN).
func ExampleAttemptProbability() {
	p, err := dirca.AttemptProbability(0.1, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.4f\n", p)
	// Output:
	// 0.0668
}

// ExampleSimulate runs one small deterministic simulation and reports
// whether the saturated network made progress.
func ExampleSimulate() {
	res, err := dirca.Simulate(dirca.SimConfig{
		Scheme:   dirca.ORTSOCTS,
		N:        3,
		Seed:     1,
		Duration: 500 * dirca.Millisecond,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("inner nodes:", len(res.ThroughputBps))
	fmt.Println("progress:", res.MeanThroughputBps() > 0)
	// Output:
	// inner nodes: 3
	// progress: true
}

// ExampleNewNetwork assembles the classic hidden-terminal scenario
// through the custom-network API.
func ExampleNewNetwork() {
	nw, err := dirca.NewNetwork(dirca.NetworkConfig{
		Scheme:    dirca.ORTSOCTS,
		Positions: []dirca.Position{{X: -0.9}, {X: 0}, {X: 0.9}},
		Flows:     []dirca.Flow{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}},
		Seed:      7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	nw.Run(2 * dirca.Second)
	a, c := nw.NodeStats(0), nw.NodeStats(2)
	fmt.Println("both hidden senders progressed:", a.Successes > 0 && c.Successes > 0)
	// Output:
	// both hidden senders progressed: true
}
