package dirca

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/neighbor"
	"repro/internal/phy"
	"repro/internal/traffic"
)

// Position is a node location in units of the transmission range
// (two nodes are neighbors iff their distance is at most 1).
type Position struct {
	X, Y float64
}

// Flow is a saturated traffic demand from node Src to node Dst (indices
// into NetworkConfig.Positions). The source is always backlogged.
type Flow struct {
	Src, Dst int
}

// NodeStats are the per-node MAC counters of a finished (or running)
// Network.
type NodeStats = mac.Stats

// NetworkConfig describes a custom scenario: an arbitrary topology with
// explicit flows, for experiments outside the paper's ring layouts
// (hidden terminals, parallel links, chains, ...).
type NetworkConfig struct {
	// Scheme selects the collision-avoidance variant.
	Scheme Scheme
	// BeamwidthDeg is the transmission beamwidth in degrees (ignored by
	// ORTSOCTS).
	BeamwidthDeg float64
	// Positions places the nodes; index = node ID.
	Positions []Position
	// Flows lists the saturated sender→receiver demands. A node may
	// appear in several flows as sender or receiver; nodes in no flow
	// only respond.
	Flows []Flow
	// PacketBytes is the data payload size (default 1460).
	PacketBytes int
	// Seed drives all protocol randomness.
	Seed int64
}

// Network is a running custom scenario.
type Network struct {
	sched *des.Scheduler
	ch    *phy.Channel
	nodes []*mac.Node
	ran   Time
}

// NewNetwork assembles the PHY, neighbor tables (ground truth) and MAC
// instances for the scenario. Call Run to advance simulated time.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if len(cfg.Positions) < 2 {
		return nil, fmt.Errorf("dirca: a network needs at least two nodes, got %d", len(cfg.Positions))
	}
	if cfg.PacketBytes == 0 {
		cfg.PacketBytes = traffic.PaperPacketBytes
	}
	// Saturated per-sender destination sets.
	dests := make(map[int][]phy.NodeID)
	for _, f := range cfg.Flows {
		if f.Src < 0 || f.Src >= len(cfg.Positions) || f.Dst < 0 || f.Dst >= len(cfg.Positions) {
			return nil, fmt.Errorf("dirca: flow %+v references unknown node", f)
		}
		if f.Src == f.Dst {
			return nil, fmt.Errorf("dirca: flow %+v sends to itself", f)
		}
		dests[f.Src] = append(dests[f.Src], phy.NodeID(f.Dst))
	}

	sched := des.New(cfg.Seed)
	ch, err := phy.NewChannel(sched, phy.DefaultParams())
	if err != nil {
		return nil, err
	}
	for _, p := range cfg.Positions {
		ch.AddRadio(geom.Point{X: p.X, Y: p.Y}, nil)
	}
	tables := neighbor.GroundTruth(ch)
	macCfg := mac.DefaultConfig(cfg.Scheme, cfg.BeamwidthDeg*degToRad)
	nodes := make([]*mac.Node, len(cfg.Positions))
	for i := range cfg.Positions {
		var src mac.Source = traffic.Empty{}
		if ds := dests[i]; len(ds) > 0 {
			src, err = traffic.NewSaturated(sched.Rand(), ds, cfg.PacketBytes)
			if err != nil {
				return nil, err
			}
		}
		nodes[i], err = mac.New(sched, ch.Radio(phy.NodeID(i)), tables[i], src, macCfg)
		if err != nil {
			return nil, err
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	return &Network{sched: sched, ch: ch, nodes: nodes}, nil
}

const degToRad = 3.14159265358979323846 / 180

// Run advances the simulation by d.
func (nw *Network) Run(d Time) {
	nw.sched.Run(nw.sched.Now() + d)
	nw.ran += d
}

// Elapsed returns the total simulated time advanced by Run.
func (nw *Network) Elapsed() Time { return nw.ran }

// NodeStats returns the MAC counters of node i.
func (nw *Network) NodeStats(i int) NodeStats {
	return nw.nodes[i].Stats()
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// ThroughputBps returns node i's acknowledged sender goodput in bits per
// second over the elapsed time.
func (nw *Network) ThroughputBps(i int) float64 {
	if nw.ran == 0 {
		return 0
	}
	return float64(nw.nodes[i].Stats().BitsAcked) / nw.ran.Seconds()
}
